"""Tests for schedule diagnostics (utilization, slack, bus, redundancy)."""

import pytest

from repro.model.fault import NO_FAULTS, FaultModel
from repro.model.policy import Policy
from repro.schedule.metrics import compute_metrics
from repro.ttp.bus import BusConfig

from tests.conftest import make_graph, schedule_single_graph

BUS2 = BusConfig(("N1", "N2"), {"N1": 10.0, "N2": 10.0}, ms_per_byte=5.0)
K1 = FaultModel(k=1, mu=10.0)


def _schedule(policies=None, mapping=None, faults=K1):
    graph = make_graph(
        {"A": {"N1": 20.0, "N2": 20.0}, "B": {"N1": 30.0, "N2": 30.0}},
        [("A", "B", 2)],
    )
    policies = policies or {"A": Policy.reexecution(1), "B": Policy.reexecution(1)}
    mapping = mapping or {"A": "N1", "B": "N2"}
    return schedule_single_graph(graph, faults, policies, mapping, BUS2)


class TestNodeMetrics:
    def test_busy_time_is_sum_of_wcets(self):
        metrics = compute_metrics(_schedule())
        assert metrics.nodes["N1"].busy_time == pytest.approx(20.0)
        assert metrics.nodes["N2"].busy_time == pytest.approx(30.0)

    def test_slack_positive_with_faults(self):
        metrics = compute_metrics(_schedule())
        assert metrics.nodes["N1"].slack_time > 0
        assert metrics.nodes["N2"].slack_time > 0

    def test_no_slack_without_faults(self):
        schedule = _schedule(
            policies={"A": Policy.reexecution(0), "B": Policy.reexecution(0)},
            faults=NO_FAULTS,
        )
        metrics = compute_metrics(schedule)
        assert metrics.nodes["N1"].slack_time == pytest.approx(0.0)

    def test_utilization_bounds(self):
        metrics = compute_metrics(_schedule())
        for node_metrics in metrics.nodes.values():
            assert 0.0 <= node_metrics.utilization <= 1.0
            assert (
                node_metrics.worst_case_utilization >= node_metrics.utilization
            )
            assert node_metrics.worst_case_utilization <= 1.0

    def test_bottleneck_is_a_known_node(self):
        metrics = compute_metrics(_schedule())
        assert metrics.bottleneck_node() in ("N1", "N2")


class TestBusMetrics:
    def test_single_message_counted(self):
        metrics = compute_metrics(_schedule())
        assert metrics.bus is not None
        assert metrics.bus.frames == 1
        assert metrics.bus.payload_bytes == 2
        assert metrics.bus.rounds_used == 1
        assert metrics.bus.bytes_per_round == pytest.approx(2.0)

    def test_colocated_app_uses_no_bus(self):
        schedule = _schedule(mapping={"A": "N1", "B": "N1"})
        metrics = compute_metrics(schedule)
        assert metrics.bus.frames == 0
        assert metrics.bus.bytes_per_round == 0.0

    def test_frames_count_descriptors_not_sender_rounds(self):
        """Two messages packed into one sender slot are two frames.

        ``BusMetrics.frames`` used to count unique (sender_node, round)
        pairs, so the "N frames, M bytes" diagnostic disagreed with the
        MEDL whenever a sender packed several messages into one frame slot.
        """
        graph = make_graph(
            {
                "A": {"N1": 20.0, "N2": 20.0},
                "B": {"N1": 30.0, "N2": 30.0},
                "C": {"N1": 30.0, "N2": 30.0},
            },
            [("A", "B", 1), ("A", "C", 1)],
        )
        schedule = schedule_single_graph(
            graph,
            K1,
            {
                "A": Policy.reexecution(1),
                "B": Policy.reexecution(1),
                "C": Policy.reexecution(1),
            },
            {"A": "N1", "B": "N2", "C": "N2"},
            BUS2,
        )
        metrics = compute_metrics(schedule)
        # Both messages ride in the same slot of N1 (same round): one
        # (sender, round) pair, but two scheduled descriptors.
        assert len(list(schedule.medl)) == 2
        rounds = {(d.sender_node, d.round_index) for d in schedule.medl}
        assert len(rounds) == 1
        assert metrics.bus.frames == 2
        assert metrics.bus.rounds_used == 1
        assert metrics.bus.payload_bytes == 2


class TestRedundancyMetrics:
    def test_pure_reexecution(self):
        metrics = compute_metrics(_schedule())
        assert metrics.redundancy.space_redundancy == 0.0
        assert metrics.redundancy.time_redundancy == pytest.approx(1.0)

    def test_replication_counts_extra_replicas(self):
        schedule = _schedule(
            policies={"A": Policy.replication(1), "B": Policy.reexecution(1)},
            mapping={"A": ("N1", "N2"), "B": "N2"},
        )
        metrics = compute_metrics(schedule)
        assert metrics.redundancy.space_redundancy == pytest.approx(0.5)
        assert metrics.redundancy.time_redundancy == pytest.approx(0.5)


class TestFormat:
    def test_format_mentions_everything(self):
        text = compute_metrics(_schedule()).format()
        assert "schedule length" in text
        assert "N1" in text and "N2" in text
        assert "bus" in text
        assert "redundancy" in text
        assert "bottleneck" in text
