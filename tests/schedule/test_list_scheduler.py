"""Unit tests for the FT list scheduler: structural invariants."""

import pytest

from repro.errors import SchedulingError
from repro.model.fault import NO_FAULTS, FaultModel
from repro.model.policy import Policy
from repro.ttp.bus import BusConfig

from tests.conftest import make_graph, schedule_single_graph

BUS2 = BusConfig(("N1", "N2"), {"N1": 10.0, "N2": 10.0}, ms_per_byte=5.0)
K1 = FaultModel(k=1, mu=10.0)


def _fork_schedule(faults=K1, policies=None, mapping=None):
    graph = make_graph(
        {
            "A": {"N1": 20.0, "N2": 25.0},
            "B": {"N1": 30.0, "N2": 35.0},
            "C": {"N1": 40.0, "N2": 45.0},
        },
        [("A", "B", 2), ("A", "C", 2)],
    )
    policies = policies or {
        name: Policy.reexecution(faults.k) for name in ("A", "B", "C")
    }
    mapping = mapping or {"A": "N1", "B": "N1", "C": "N2"}
    return schedule_single_graph(graph, faults, policies, mapping, BUS2)


class TestRootScheduleInvariants:
    def test_no_overlap_per_node(self):
        schedule = _fork_schedule()
        for node, chain in schedule.node_chains.items():
            table = [schedule.placements[iid] for iid in chain]
            for earlier, later in zip(table, table[1:]):
                assert later.root_start >= earlier.root_finish - 1e-9

    def test_precedence_respected_locally(self):
        schedule = _fork_schedule()
        a = schedule.placements["A:r0"]
        b = schedule.placements["B:r0"]
        assert b.root_start >= a.root_finish - 1e-9

    def test_cross_node_successor_waits_for_message(self):
        schedule = _fork_schedule()
        c = schedule.placements["C:r0"]
        descriptor = schedule.medl["m_A_C[A:r0]"]
        assert c.root_start >= descriptor.arrival - 1e-9

    def test_masked_message_after_sender_wcf(self):
        schedule = _fork_schedule()
        a = schedule.placements["A:r0"]
        descriptor = schedule.medl["m_A_C[A:r0]"]
        assert descriptor.slot_start >= a.wcf - 1e-9

    def test_message_sent_in_sender_slot(self):
        schedule = _fork_schedule()
        descriptor = schedule.medl["m_A_C[A:r0]"]
        assert descriptor.sender_node == "N1"
        # N1 owns the first 10 ms of every 20 ms round.
        assert descriptor.slot_start % 20.0 == pytest.approx(0.0)

    def test_all_instances_placed(self):
        schedule = _fork_schedule()
        assert len(schedule.placements) == 3
        assert len(schedule.order) == 3

    def test_wcf_at_least_root_finish(self):
        schedule = _fork_schedule()
        for placed in schedule.placements.values():
            assert placed.wcf >= placed.root_finish - 1e-9


class TestFaultFreeDegeneration:
    def test_nft_has_no_slack(self):
        schedule = _fork_schedule(
            faults=NO_FAULTS,
            policies={name: Policy.reexecution(0) for name in ("A", "B", "C")},
        )
        for placed in schedule.placements.values():
            assert placed.wcf == pytest.approx(placed.root_finish)

    def test_nft_message_at_root_finish_slot(self):
        schedule = _fork_schedule(
            faults=NO_FAULTS,
            policies={name: Policy.reexecution(0) for name in ("A", "B", "C")},
        )
        a = schedule.placements["A:r0"]
        descriptor = schedule.medl["m_A_C[A:r0]"]
        assert descriptor.slot_start >= a.root_finish - 1e-9
        assert descriptor.slot_start < a.root_finish + BUS2.round_length


class TestReplication:
    def test_replicated_process_runs_on_both_nodes(self):
        schedule = _fork_schedule(
            policies={
                "A": Policy.replication(1),
                "B": Policy.reexecution(1),
                "C": Policy.reexecution(1),
            },
            mapping={"A": ("N1", "N2"), "B": "N1", "C": "N2"},
        )
        nodes = {schedule.placements[i].node for i in ("A:r0", "A:r1")}
        assert nodes == {"N1", "N2"}

    def test_descendant_starts_at_first_replica_arrival(self):
        schedule = _fork_schedule(
            policies={
                "A": Policy.replication(1),
                "B": Policy.reexecution(1),
                "C": Policy.reexecution(1),
            },
            mapping={"A": ("N1", "N2"), "B": "N1", "C": "N2"},
        )
        # C on N2 is co-located with replica A:r1 — its root start is the
        # local replica's finish, not the (later) remote message.
        c = schedule.placements["C:r0"]
        local = schedule.placements["A:r1"]
        assert c.root_start == pytest.approx(
            max(local.root_finish, 0.0), abs=1e-6
        )

    def test_fast_frames_before_masked_equivalent(self):
        replicated = _fork_schedule(
            policies={
                "A": Policy.replication(1),
                "B": Policy.reexecution(1),
                "C": Policy.reexecution(1),
            },
            mapping={"A": ("N1", "N2"), "B": "N1", "C": "N2"},
        )
        masked = _fork_schedule()
        fast = replicated.medl["m_A_C[A:r0]"]
        slow = masked.medl["m_A_C[A:r0]"]
        assert fast.slot_start <= slow.slot_start


class TestCompletions:
    def test_completion_of_reexecuted_process_is_wcf(self):
        schedule = _fork_schedule()
        assert schedule.completions["A"] == schedule.placements["A:r0"].wcf

    def test_makespan_is_max_completion(self):
        schedule = _fork_schedule()
        assert schedule.makespan == max(schedule.completions.values())

    def test_makespan_grows_with_k(self):
        lengths = []
        for k in (0, 1, 2, 3):
            faults = FaultModel(k=k, mu=10.0 if k else 0.0)
            schedule = _fork_schedule(
                faults=faults,
                policies={n: Policy.reexecution(k) for n in ("A", "B", "C")},
            )
            lengths.append(schedule.makespan)
        assert lengths == sorted(lengths)
        assert lengths[0] < lengths[-1]

    def test_makespan_grows_with_mu(self):
        lengths = []
        for mu in (1.0, 5.0, 15.0):
            schedule = _fork_schedule(faults=FaultModel(k=1, mu=mu))
            lengths.append(schedule.makespan)
        assert lengths == sorted(lengths)
        assert lengths[0] < lengths[-1]


class TestErrors:
    def test_empty_graph_rejected(self):
        from repro.model.application import Application, ProcessGraph
        from repro.model.mapping import ReplicaMapping
        from repro.model.policy import PolicyAssignment
        from repro.schedule.list_scheduler import list_schedule

        graph = make_graph({"A": {"N1": 1.0}})
        # Bypass merge validation by scheduling an empty FT graph directly.
        with pytest.raises(SchedulingError):
            from repro.model.ftgraph import FTGraph
            from repro.schedule.list_scheduler import schedule_ft_graph

            schedule_ft_graph(graph, FTGraph(), NO_FAULTS, BUS2)
