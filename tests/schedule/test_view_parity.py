"""Parity suite: every lazily rendered view matches the pre-refactor output.

The golden files under ``tests/data/goldens/`` were produced by the seed
pipeline (eager ``SystemSchedule`` object graphs) immediately before the
``ScheduleRecord`` refactor.  Every user-facing rendering — node tables,
Gantt, metrics, MEDL, completions, critical path — must stay byte-identical
when derived lazily from the compact IR.
"""

import pickle

import pytest

from repro.ttp.frame import frames_from_descriptors
from repro.ttp.schedule import BusScheduler

from tests.schedule.parity_cases import (
    CASES,
    GOLDEN_DIR,
    build_schedule,
    render_views,
)

VIEWS = (
    "tables",
    "gantt",
    "node_table",
    "metrics",
    "medl",
    "completions",
    "critical_path",
)


@pytest.fixture(scope="module")
def schedules():
    return {tag: build_schedule(*params) for tag, *params in CASES}


@pytest.mark.parametrize("tag", [case[0] for case in CASES])
@pytest.mark.parametrize("view", VIEWS)
def test_view_matches_golden(schedules, tag, view):
    golden = (GOLDEN_DIR / f"{tag}__{view}.txt").read_text()
    rendered = render_views(schedules[tag])[view]
    assert rendered + "\n" == golden


@pytest.mark.parametrize("tag", [case[0] for case in CASES])
def test_views_survive_the_process_boundary(schedules, tag):
    """Re-rendering from a pickled record must reproduce the goldens too:
    this is the contract that lets experiment workers return records."""
    from repro.schedule.table import SystemSchedule

    schedule = schedules[tag]
    record = pickle.loads(pickle.dumps(schedule.record))
    rebound = SystemSchedule.from_record(
        record, schedule.graph, schedule.ft, schedule.faults, schedule.bus
    )
    for view, rendered in render_views(rebound).items():
        golden = (GOLDEN_DIR / f"{tag}__{view}.txt").read_text()
        assert rendered + "\n" == golden


@pytest.mark.parametrize("tag", [case[0] for case in CASES])
def test_frames_render_identically_from_descriptors(schedules, tag):
    """The frame packing reconstructed from MEDL descriptors equals the
    packing the stateful bus scheduler produced while scheduling."""
    schedule = schedules[tag]
    rebuilt = frames_from_descriptors(schedule.medl, schedule.bus.capacity_bytes)
    # Re-run the bus side alone to obtain the scheduler's own frame list.
    scheduler = BusScheduler(schedule.bus)
    for descriptor in sorted(
        schedule.medl, key=lambda d: (d.round_index, d.slot_start, d.offset_bytes)
    ):
        scheduler.schedule_message(
            bus_message_id=descriptor.bus_message_id,
            sender_node=descriptor.sender_node,
            size_bytes=descriptor.size_bytes,
            ready_time=descriptor.slot_start,
        )
    assert rebuilt == scheduler.frames()
