"""Contract tests of :class:`repro.schedule.state.SchedulerState`.

The incremental kernel leans on three properties of the explicit state
machine, checked here in isolation from the delta machinery:

* **snapshot/restore byte parity** — rewinding to a mid-run snapshot and
  re-running the suffix reproduces the exact record, and one snapshot can
  seed any number of replays;
* **observation-only tracing** — running with a :class:`ScheduleTrace`
  attached never perturbs the schedule;
* **cost_view parity** — the unsealed ``(degree, makespan)`` view equals
  the sealed record's values bit for bit (this is what lets
  ``Evaluator.evaluate_many`` price candidates without sealing).
"""

from __future__ import annotations

import pytest

from repro.errors import SchedulingError
from repro.gen.suite import generate_case
from repro.model.ftgraph import build_ft_graph
from repro.model.merge import merge_application
from repro.opt.initial import initial_bus_access, initial_mpa
from repro.schedule.state import SchedulerState, ScheduleTrace


def _state(n=12, nodes=3, k=2, seed=1, replicas=2, trace=None):
    case = generate_case(n, nodes, k, mu=5.0, seed=seed)
    merged = merge_application(case.application)
    bus = initial_bus_access(case.application, case.architecture)
    impl = initial_mpa(
        merged, case.architecture, case.faults, bus, replicas
    )
    ft = build_ft_graph(merged, impl.policies, impl.mapping, case.faults)
    return SchedulerState(merged, ft, case.faults, bus, trace=trace)


class TestSnapshotRestore:
    def test_restore_replays_identical_suffix(self):
        reference = _state()
        reference.run()
        golden = reference.seal()

        state = _state()
        for _ in range(len(state.ft) // 2):
            state.step()
        snapshot = state.snapshot()
        assert snapshot.rank == state.rank
        state.run()
        first = state.seal()
        assert first == golden

        state.restore(snapshot)
        assert state.rank == snapshot.rank
        state.run()
        second = state.seal()
        assert second == golden
        assert repr(second) == repr(golden)

    def test_one_snapshot_seeds_many_replays(self):
        state = _state()
        for _ in range(3):
            state.step()
        snapshot = state.snapshot()
        records = []
        for _ in range(3):
            state.restore(snapshot)
            state.run()
            records.append(state.seal())
        assert records[0] == records[1] == records[2]

    def test_restore_at_rank_zero(self):
        state = _state(n=8, nodes=2, k=1, seed=0, replicas=1)
        snapshot = state.snapshot()
        assert snapshot.rank == 0
        state.run()
        golden = state.seal()
        state.restore(snapshot)
        state.run()
        assert state.seal() == golden


class TestTrace:
    def test_tracing_is_observation_only(self):
        untraced = _state()
        untraced.run()
        golden = untraced.seal()

        trace = ScheduleTrace()
        traced = _state(trace=trace)
        traced.run()
        sealed = traced.seal()
        assert sealed == golden
        assert repr(sealed) == repr(golden)

    def test_trace_covers_every_instance(self):
        trace = ScheduleTrace()
        state = _state(trace=trace)
        state.run()
        record = state.seal()
        assert set(trace.ready_rank) == set(record.instance_ids)
        # An instance can never become ready after its own placement.
        rank_of = {iid: i for i, iid in enumerate(record.instance_ids)}
        for iid, ready in trace.ready_rank.items():
            assert 0 <= ready <= rank_of[iid]


class TestCostView:
    def test_cost_view_matches_sealed_record(self):
        state = _state()
        state.run()
        degree, makespan = state.cost_view()
        record = state.seal()
        assert degree == record.degree_of_schedulability()
        assert makespan == record.makespan

    def test_cost_view_on_incomplete_schedule_raises(self):
        state = _state()
        state.step()
        with pytest.raises(SchedulingError):
            state.cost_view()

    def test_seal_on_incomplete_schedule_raises(self):
        state = _state()
        state.step()
        with pytest.raises(SchedulingError):
            state.seal()
