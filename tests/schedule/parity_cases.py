"""Shared fixtures of the view-parity suite (see test_view_parity.py).

The cases and renderings defined here were run once against the seed
(pre-`ScheduleRecord`) pipeline to produce the golden files under
``tests/data/goldens/``; the parity suite re-renders every view from the
current pipeline and asserts byte-identical output.  Regenerate the goldens
only when the *schedule itself* legitimately changes (never to paper over a
view regression)::

    PYTHONPATH=src:tests python -m schedule.parity_cases
"""

from __future__ import annotations

from pathlib import Path

from repro.gen.suite import generate_case
from repro.model.merge import merge_application
from repro.opt.initial import initial_bus_access, initial_mpa
from repro.schedule.gantt import GanttOptions, render_gantt, render_node_table
from repro.schedule.list_scheduler import list_schedule
from repro.schedule.metrics import compute_metrics

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "data" / "goldens"

#: (tag, n_processes, n_nodes, k, seed, initial_replicas) — replicas > 1
#: exercises fast/guaranteed frames, 1 exercises pure re-execution.
CASES = [
    ("reexec_8p2n_k2", 8, 2, 2, 0, 1),
    ("replicated_10p3n_k2", 10, 3, 2, 3, 3),
    ("mixed_14p2n_k3", 14, 2, 3, 7, 2),
]


def build_schedule(n_processes, n_nodes, k, seed, initial_replicas):
    case = generate_case(n_processes, n_nodes, k, mu=5.0, seed=seed)
    merged = merge_application(case.application)
    bus = initial_bus_access(case.application, case.architecture)
    impl = initial_mpa(
        merged, case.architecture, case.faults, bus, initial_replicas
    )
    return list_schedule(merged, case.faults, impl.policies, impl.mapping, bus)


def render_views(schedule) -> dict[str, str]:
    """Every user-facing rendering of one synthesized schedule."""
    first_node = sorted(schedule.node_chains)[0]
    medl_lines = [
        f"{d.bus_message_id} {d.sender_node} r{d.round_index} "
        f"[{d.slot_start:.3f},{d.slot_end:.3f}) off={d.offset_bytes} "
        f"size={d.size_bytes}"
        for d in sorted(
            schedule.medl, key=lambda d: (d.slot_start, d.offset_bytes)
        )
    ]
    completions = [
        f"{name} {schedule.completions[name]:.6f}"
        for name in sorted(schedule.completions)
    ]
    return {
        "tables": schedule.format_tables(),
        "gantt": render_gantt(schedule, GanttOptions(width=80)),
        "node_table": render_node_table(schedule, first_node),
        "metrics": compute_metrics(schedule).format(),
        "medl": "\n".join(medl_lines),
        "completions": "\n".join(completions),
        "critical_path": " -> ".join(schedule.critical_path()),
    }


def main() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for tag, *params in CASES:
        schedule = build_schedule(*params)
        for view, text in render_views(schedule).items():
            path = GOLDEN_DIR / f"{tag}__{view}.txt"
            path.write_text(text + "\n")
            print(f"wrote {path}")


if __name__ == "__main__":
    main()
