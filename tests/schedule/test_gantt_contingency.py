"""Tests for Gantt rendering and contingency schedule synthesis."""

import pytest

from repro.model.fault import FaultModel
from repro.model.policy import Policy
from repro.schedule.contingency import (
    format_contingency,
    single_fault_scenarios,
    synthesize_contingency_schedules,
    transparency_report,
)
from repro.schedule.gantt import GanttOptions, render_gantt, render_node_table
from repro.sim.faults import FaultScenario
from repro.ttp.bus import BusConfig

from tests.conftest import make_graph, schedule_single_graph

BUS2 = BusConfig(("N1", "N2"), {"N1": 10.0, "N2": 10.0}, ms_per_byte=5.0)
K1 = FaultModel(k=1, mu=10.0)


def _schedule(policies=None, mapping=None):
    graph = make_graph(
        {
            "A": {"N1": 20.0, "N2": 20.0},
            "B": {"N1": 30.0, "N2": 30.0},
            "C": {"N1": 25.0, "N2": 25.0},
        },
        [("A", "B", 2), ("A", "C", 2)],
    )
    policies = policies or {n: Policy.reexecution(1) for n in "ABC"}
    mapping = mapping or {"A": "N1", "B": "N1", "C": "N2"}
    return schedule_single_graph(graph, K1, policies, mapping, BUS2)


class TestGantt:
    def test_contains_nodes_bus_and_length(self):
        text = render_gantt(_schedule())
        assert "N1" in text and "N2" in text
        assert "bus" in text
        assert "schedule length" in text

    def test_slack_hatching_present(self):
        text = render_gantt(_schedule())
        assert ":" in text

    def test_no_bus_row_when_disabled(self):
        text = render_gantt(_schedule(), GanttOptions(show_bus=False))
        assert "\nbus" not in text

    def test_width_clamped(self):
        narrow = render_gantt(_schedule(), GanttOptions(width=10))
        wide = render_gantt(_schedule(), GanttOptions(width=10_000))
        assert max(len(line) for line in narrow.splitlines()) >= 40
        assert max(len(line) for line in wide.splitlines()) <= 140

    def test_node_table_rendering(self):
        text = render_node_table(_schedule(), "N1")
        assert "A:r0" in text and "B:r0" in text
        assert "WCF" in text


class TestContingency:
    def test_single_fault_scenarios_cover_all_instances(self):
        schedule = _schedule()
        scenarios = single_fault_scenarios(schedule)
        assert len(scenarios) == len(schedule.placements)
        assert all(s.total_faults == 1 for s in scenarios)

    def test_no_scenarios_for_nft(self):
        from repro.model.fault import NO_FAULTS

        graph = make_graph({"A": {"N1": 10.0}})
        schedule = schedule_single_graph(
            graph, NO_FAULTS, {"A": Policy.reexecution(0)}, {"A": "N1"}, BUS2
        )
        assert single_fault_scenarios(schedule) == []

    def test_tables_shift_only_within_slack(self):
        schedule = _schedule()
        for contingency in synthesize_contingency_schedules(schedule):
            for node, entries in contingency.tables.items():
                for entry in entries:
                    bound = schedule.placements[entry.instance_id].wcf
                    assert entry.finish <= bound + 1e-6

    def test_fault_shifts_its_own_node(self):
        schedule = _schedule()
        (contingency,) = synthesize_contingency_schedules(
            schedule, [FaultScenario({"A:r0": 1})]
        )
        assert "N1" in contingency.shifted_nodes()
        assert contingency.max_shift() > 0.0

    def test_reexecution_faults_are_transparent(self):
        """Pure re-execution: no single fault is visible on other nodes."""
        report = transparency_report(_schedule())
        assert report.fully_transparent
        assert len(report.transparent) == 3

    def test_replica_kill_visible_downstream(self):
        """Killing a replica activates the descendant's contingency (Fig. 7).

        The receiver lives on a third node and starts, fault-free, on the
        earlier replica frame; killing that replica makes it wait for the
        surviving replica's frame — a visible shift on a foreign node.
        """
        bus3 = BusConfig(
            ("N1", "N2", "N3"),
            {"N1": 10.0, "N2": 10.0, "N3": 10.0},
            ms_per_byte=5.0,
        )
        graph = make_graph(
            {
                "A": {"N1": 20.0, "N2": 35.0, "N3": 30.0},
                "B": {"N1": 30.0, "N2": 30.0, "N3": 30.0},
            },
            [("A", "B", 2)],
        )
        schedule = schedule_single_graph(
            graph,
            K1,
            {"A": Policy.replication(1), "B": Policy.reexecution(1)},
            {"A": ("N1", "N2"), "B": "N3"},
            bus3,
        )
        report = transparency_report(schedule)
        assert not report.fully_transparent
        affected = set().union(*report.visible.values())
        assert "N3" in affected

    def test_format_contingency(self):
        schedule = _schedule()
        (contingency,) = synthesize_contingency_schedules(
            schedule, [FaultScenario({"B:r0": 1})]
        )
        text = format_contingency(contingency)
        assert "contingency for" in text
        assert "B:r0" in text
