"""Cache-scaling micro-benchmark: how big should the evaluation LRU be?

Runs the 20-process MXR strategy (the paper's smallest Table 1 row) with
the evaluation cache bounded at 64 / 256 / 1024 / 4096 entries and records
hit rate and evaluation requests per second for each size into
``BENCH_cache.json`` at the repository root.

Context: with PR 1's object-graph caching, 256 entries was the measured
optimum — every retained ``SystemSchedule`` was a cyclic-GC-tracked object
graph, and past 256 the collector's re-scan cost beat the extra hits.
The compact :class:`~repro.schedule.record.ScheduleRecord` is flat tuples
the GC untracks, so retention is nearly free and the bound is set by
hit-rate saturation instead; this benchmark is the measurement behind the
current ``DEFAULT_CACHE_SIZE`` (see DESIGN.md).
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

from repro.gen.suite import generate_case
from repro.opt.evaluator import DEFAULT_CACHE_SIZE
from repro.opt.strategy import OptimizationConfig, optimize

from benchmarks.conftest import bench_stamp

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_cache.json"

CACHE_SIZES = (64, 256, 1024, 4096)

#: Deterministic search budget (no wall-clock limit): large enough that the
#: number of unique design points visited (~2.6k) exceeds the smaller cache
#: bounds, so eviction effects are actually exercised.
_CONFIG = dict(
    minimize=True, rounds=3, greedy_max_iterations=25, tabu_max_iterations=25,
    time_limit_s=None,
)


def _run_at(cache_size: int) -> dict:
    case = generate_case(20, 2, 3, mu=5.0, seed=0)
    config = OptimizationConfig(cache_size=cache_size, **_CONFIG)
    # Hit/miss counts are deterministic; only wall-clock is noisy, so take
    # the faster of two runs to keep the recorded trajectory stable.
    elapsed = float("inf")
    for _ in range(2):
        gc.collect()
        started = time.perf_counter()
        result = optimize(
            case.application, case.architecture, case.faults, "MXR", config
        )
        elapsed = min(elapsed, time.perf_counter() - started)
    requests = result.evaluations + result.cache_hits
    return {
        "cache_size": cache_size,
        "elapsed_s": round(elapsed, 3),
        "evaluations": result.evaluations,
        "cache_hits": result.cache_hits,
        "hit_rate": round(
            result.cache_hits / requests if requests else 0.0, 4
        ),
        "requests_per_sec": round(requests / elapsed, 1),
        "makespan": round(result.makespan, 2),
    }


def test_cache_scaling_records_bench_json():
    """Measure hit rate and evals/sec across cache bounds; write the record."""
    rows = [_run_at(size) for size in CACHE_SIZES]

    record = {
        "stamp": bench_stamp(),
        "case": {"n_processes": 20, "n_nodes": 2, "k": 3, "mu": 5.0, "seed": 0},
        "strategy": "MXR",
        "config": {
            k: v for k, v in _CONFIG.items() if k != "time_limit_s"
        },
        "default_cache_size": DEFAULT_CACHE_SIZE,
        "baseline_object_graph_cache": {
            # PR 1 (SystemSchedule object graphs, bound 256), measured on
            # the same case/config right before the ScheduleRecord refactor.
            # Static record of a one-off measurement — NOT re-measured on
            # this machine/run; compare trends, not absolute timings.
            "static_pre_refactor_measurement": True,
            "cache_size": 256,
            "elapsed_s": 3.4,
            "evaluations": 2601,
            "cache_hits": 218,
            "hit_rate": 0.0773,
            "requests_per_sec": 829.2,
        },
        "sizes": rows,
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")

    # Identical deterministic searches: every size visits the same points.
    assert len({row["makespan"] for row in rows}) == 1
    # Hit rate is monotone in the bound (more retention never hurts).
    hit_rates = [row["hit_rate"] for row in rows]
    assert hit_rates == sorted(hit_rates)
    assert any(row["cache_size"] == DEFAULT_CACHE_SIZE for row in rows)
