"""Queue-overhead benchmark: what does broker plumbing cost per job?

Two measurements, recorded to ``BENCH_queue.json`` at the repository root
(uploaded by CI next to the other BENCH artifacts):

* **broker micro-ops** — enqueue / lease+ack throughput of both backends
  on synthetic payloads, i.e. the queue's bookkeeping ceiling;
* **sweep overhead** — one tiny deterministic sweep run through the
  process pool versus through the SQLite broker with the same number of
  worker processes; the per-job delta is the end-to-end price of
  durability (JSON codec + SQLite writes + worker validation), the cost a
  multi-machine run pays for resumability.

The numbers are wall-clock and therefore noisy; CI records the trend, the
assertions only guard sanity (every op completes, results match).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.experiments.parallel import run_case_jobs, sweep_jobs
from repro.opt.strategy import OptimizationConfig
from repro.queue.memory import MemoryBroker
from repro.queue.sqlite import SqliteBroker

from benchmarks.conftest import bench_stamp

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_queue.json"

#: Synthetic payload roughly the size of an encoded CaseJob.
_PAYLOAD = json.dumps({"n_processes": 40, "variants": ["NFT", "MXR"]} | {
    f"knob_{i}": i * 0.5 for i in range(10)
})
_MICRO_OPS = 300

#: Deterministic sweep (no wall-clock limit): pool and queue runs search
#: identically, so their wall-clock difference is pure plumbing.
_TINY = OptimizationConfig(
    minimize=True, rounds=1, greedy_max_iterations=3, tabu_max_iterations=2
)
_DIMS = ((8, 2, 2), (10, 2, 2))
_SEEDS = (0, 1)
_WORKERS = 2


def _micro_ops(make_broker) -> dict:
    broker = make_broker()
    try:
        started = time.perf_counter()
        for index in range(_MICRO_OPS):
            broker.enqueue(f"fp{index}", _PAYLOAD)
        enqueue_s = time.perf_counter() - started

        started = time.perf_counter()
        for _ in range(_MICRO_OPS):
            leased = broker.lease("bench-worker", 60.0)
            broker.ack(leased.fingerprint, _PAYLOAD)
        lease_ack_s = time.perf_counter() - started
    finally:
        broker.close()
    return {
        "ops": _MICRO_OPS,
        "enqueue_per_sec": round(_MICRO_OPS / enqueue_s, 1),
        "lease_ack_per_sec": round(_MICRO_OPS / lease_ack_s, 1),
    }


def test_queue_overhead_records_bench_json(tmp_path):
    jobs = sweep_jobs(_DIMS, _SEEDS, ("NFT",), 5.0, 1.0, _TINY, tag="bench")

    started = time.perf_counter()
    pool_results = run_case_jobs(jobs, n_jobs=_WORKERS)
    pool_s = time.perf_counter() - started

    broker = SqliteBroker(tmp_path / "bench-queue.db")
    try:
        started = time.perf_counter()
        queue_results = run_case_jobs(jobs, n_jobs=_WORKERS, broker=broker)
        queue_s = time.perf_counter() - started
    finally:
        broker.close()

    # Same deterministic searches either way.
    assert [r["NFT"].makespan for r in pool_results] == [
        r["NFT"].makespan for r in queue_results
    ]

    record = {
        "stamp": bench_stamp(),
        "benchmark": "queue_overhead",
        "brokers": {
            "memory": _micro_ops(MemoryBroker),
            "sqlite": _micro_ops(
                lambda: SqliteBroker(tmp_path / "bench-micro.db")
            ),
        },
        "sweep": {
            "n_jobs": len(jobs),
            "workers": _WORKERS,
            "pool_elapsed_s": round(pool_s, 3),
            "queue_elapsed_s": round(queue_s, 3),
            "overhead_per_job_s": round((queue_s - pool_s) / len(jobs), 3),
            "note": (
                "queue path includes worker-side validate_record fault "
                "injection and spawn-context worker start-up; the pool "
                "path does neither"
            ),
        },
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")

    for backend in record["brokers"].values():
        assert backend["enqueue_per_sec"] > 0
        assert backend["lease_ack_per_sec"] > 0
