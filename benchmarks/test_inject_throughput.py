"""Fault-injection throughput benchmark -> ``BENCH_inject.json``.

Three measurements on one deterministic initial-MPA target whose <=k
fault space (46k scenarios at 30 processes, k=4) exceeds the sweep
budget, so the planner exercises both tiers — exhaustive low strata,
stratified draws on the top stratum — next to the importance wave:

* **inline batched sweep** — shards stream through the columnar
  replay kernel (:mod:`repro.sim.batch`); ``inject.scenarios_per_sec``
  is the headline throughput CI gates against the committed baseline,
  and ``inject.batch.speedup_vs_scalar`` prices the kernel against the
  scalar reference on identical shards;
* **inline scalar sweep** — the same plan with ``batch_size=0``
  (scenario-by-scenario ``SystemSimulator.run``), the reference the
  batch tier must match byte for byte;
* **queued sweep** — the identical plan through a SQLite broker with
  two worker processes (workers replay batched); the per-shard delta
  prices the distribution plumbing a multi-machine million-scenario
  run pays for resumability.

Wall-clock numbers are noisy; CI records the trend, assertions only
guard sanity (identical aggregates across all three paths, every
scenario accounted for).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.gen.suite import generate_case
from repro.inject.driver import run_inject_sweep
from repro.inject.importance import importance_scenarios
from repro.inject.plan import plan_sweep
from repro.inject.runner import DEFAULT_BATCH_SIZE
from repro.inject.space import ScenarioSpace
from repro.inject.target import InjectTarget
from repro.model.merge import merge_application
from repro.opt.initial import initial_bus_access, initial_mpa
from repro.queue.sqlite import SqliteBroker
from repro.schedule.list_scheduler import list_schedule

from benchmarks.conftest import bench_stamp

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_inject.json"

_PROCESSES, _NODES, _K, _SEED = 30, 3, 4, 1
_BUDGET = 30_000
_SHARD_SIZE = 2_000
_WORKERS = 2


def _bench_target() -> InjectTarget:
    case = generate_case(_PROCESSES, _NODES, _K, mu=5.0, seed=_SEED)
    merged = merge_application(case.application)
    bus = initial_bus_access(case.application, case.architecture)
    implementation = initial_mpa(merged, case.architecture, case.faults, bus)
    schedule = list_schedule(
        merged, case.faults, implementation.policies,
        implementation.mapping, bus,
    )
    return InjectTarget(
        application=case.application,
        faults=case.faults,
        implementation=implementation,
        record=schedule.record,
        label=f"bench-{_PROCESSES}p{_NODES}n-k{_K}",
    )


def test_inject_throughput_records_bench_json(tmp_path):
    target = _bench_target()
    context = target.build_context()
    space = ScenarioSpace.of(context.ft, target.faults.k)
    ranked = importance_scenarios(target.record, context.ft, target.faults.k)
    plan = plan_sweep(
        space, len(ranked), budget=_BUDGET, shard_size=_SHARD_SIZE
    )

    started = time.perf_counter()
    scalar, scalar_stats = run_inject_sweep(target, plan, batch_size=0)
    scalar_s = time.perf_counter() - started

    started = time.perf_counter()
    inline, inline_stats = run_inject_sweep(target, plan)
    inline_s = time.perf_counter() - started

    broker = SqliteBroker(tmp_path / "bench-inject.db")
    try:
        started = time.perf_counter()
        queued, queued_stats = run_inject_sweep(
            target, plan, broker=broker, local_workers=_WORKERS,
        )
        queued_s = time.perf_counter() - started
    finally:
        broker.close()

    # Identical deterministic shards on every path: batched inline,
    # scalar reference, and batched through the queue.
    assert (
        scalar_stats.completed == inline_stats.completed
        == queued_stats.completed == len(plan.shards)
    )
    scalar_summary = scalar.to_dict()
    inline_summary = inline.to_dict()
    queued_summary = queued.to_dict()
    for summary in (scalar_summary, inline_summary, queued_summary):
        summary.pop("elapsed_s")
        summary.pop("scenarios_per_sec")
        summary.pop("phase_s")
    assert inline_summary == scalar_summary == queued_summary

    record = {
        "stamp": bench_stamp(),
        "benchmark": "inject_throughput",
        "target": {
            "label": target.label,
            "space": space.total,
            "budget": _BUDGET,
            "shards": len(plan.shards),
            "plan": plan.describe(),
        },
        "inject": {
            "scenarios": inline.scenarios,
            "draws": inline.draws,
            "elapsed_s": round(inline_s, 3),
            "scenarios_per_sec": round(inline.scenarios / inline_s, 1),
            "residual_upper_bound": inline.residual_upper_bound(),
            "ok": inline.ok,
            "batch": {
                "batch_size": DEFAULT_BATCH_SIZE,
                "scenarios_per_sec": round(inline.scenarios / inline_s, 1),
                "speedup_vs_scalar": round(scalar_s / inline_s, 2),
                "phase_s": {
                    "materialize": round(inline.materialize_s, 3),
                    "simulate": round(inline.simulate_s, 3),
                    "classify": round(inline.classify_s, 3),
                    "fold": round(inline.fold_s, 3),
                },
            },
            "scalar": {
                "elapsed_s": round(scalar_s, 3),
                "scenarios_per_sec": round(scalar.scenarios / scalar_s, 1),
            },
        },
        "queue": {
            "workers": _WORKERS,
            "elapsed_s": round(queued_s, 3),
            "scenarios_per_sec": round(queued.scenarios / queued_s, 1),
            "overhead_per_shard_s": round(
                (queued_s - inline_s) / len(plan.shards), 3
            ),
            "note": (
                "queue path includes spawn-context worker start-up and "
                "per-shard target decoding (amortized by worker-side "
                "context caches); workers replay through the batched "
                "kernel"
            ),
        },
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")

    assert record["inject"]["ok"] is True
    assert record["inject"]["scenarios_per_sec"] > 0
    assert record["inject"]["batch"]["speedup_vs_scalar"] > 1.0
    assert inline.draws == plan.total_scenarios
