"""Benchmark: Figure 10 — MX / MR / SFX deviation from MXR (paper §6).

Paper findings this regenerates (average % deviation from MXR, read off
Figure 10): MR is by far the worst strategy at every size (worse than the
straightforward SFX), SFX is far from MXR (mapping must be FT-aware), and
MX trails MXR by roughly 10-25% with the gap peaking mid-size.  Overall the
paper reports MXR beating MR by 77% and MX by 17.6% on average.
"""

from __future__ import annotations

from benchmarks.conftest import bench_seeds, print_block
from repro.experiments.figure10 import figure10
from repro.experiments.reporting import format_figure10

import pytest


@pytest.fixture
def fig_seeds() -> tuple[int, ...]:
    # Figure 10 runs 4 variants per case; default to one seed to keep the
    # harness fast (raise REPRO_BENCH_SEEDS for tighter averages).
    return bench_seeds(1)


def test_figure10(benchmark, fig_seeds, time_scale):
    rows = benchmark.pedantic(
        figure10,
        kwargs={"seeds": fig_seeds, "time_scale": time_scale},
        rounds=1,
        iterations=1,
    )
    body = format_figure10(rows)
    body += (
        "\n\npaper reference: MR worst everywhere (avg 77% above MXR), "
        "SFX in between, MX closest (avg 17.6% above MXR)"
    )
    print_block("FIGURE 10", body)

    for row in rows:
        series = row.series()
        # MR must be the worst strategy at every size.
        assert series["MR"] >= series["MX"]
        assert series["MR"] >= series["SFX"] * 0.5
        # No strategy may beat MXR on average by more than noise.
        assert series["MX"] >= -5.0
        assert series["SFX"] >= -5.0

    # Aggregate ordering across the sweep: MR > SFX > MX.
    avg = {
        v: sum(r.series()[v] for r in rows) / len(rows) for v in ("MX", "MR", "SFX")
    }
    assert avg["MR"] > avg["SFX"] > avg["MX"]
