"""Benchmark: Table 1a — MXR overhead versus application size (paper §6).

Paper reference (15 random apps per row, hours of tabu search per app):

    procs  k   %max    %avg    %min
    20     3   98.36   70.67   48.87
    40     4  116.77   84.78   47.30
    60     5  142.63   99.59   51.90
    80     6  177.95  120.55   90.70
    100    7  215.83  149.47  100.37

The scaled-down defaults (2 seeds, ~0.3x budget) reproduce the shape: the
average overhead is around 100% and grows with the application size.
"""

from __future__ import annotations

from benchmarks.conftest import print_block
from repro.experiments.reporting import format_table1
from repro.experiments.table1 import table1a

PAPER_ROWS = {
    "20 procs": (98.36, 70.67, 48.87),
    "40 procs": (116.77, 84.78, 47.30),
    "60 procs": (142.63, 99.59, 51.90),
    "80 procs": (177.95, 120.55, 90.70),
    "100 procs": (215.83, 149.47, 100.37),
}


def test_table1a(benchmark, seeds, time_scale):
    rows = benchmark.pedantic(
        table1a,
        kwargs={"seeds": seeds, "time_scale": time_scale},
        rounds=1,
        iterations=1,
    )
    lines = [format_table1(rows, "Table 1a (measured): MXR overhead vs NFT")]
    lines.append("\npaper reference:")
    for label, (mx, avg, mn) in PAPER_ROWS.items():
        lines.append(f"{label:<14} {mx:8.2f} {avg:8.2f} {mn:8.2f}")
    print_block("TABLE 1a", "\n".join(lines))

    # Shape assertions: overheads are positive and generally grow with size.
    assert all(row.avg_overhead > 0 for row in rows)
    assert rows[-1].avg_overhead > rows[0].avg_overhead * 0.8
