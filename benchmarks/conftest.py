"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints the
rows next to the paper's reference values, so ``pytest benchmarks/
--benchmark-only`` doubles as the reproduction record (see EXPERIMENTS.md).

Scale knobs (environment variables):

``REPRO_BENCH_SEEDS``      random applications per dimension (default 2;
                           paper used 15)
``REPRO_BENCH_TIME_SCALE`` multiplier on the per-size search budgets
                           (default 0.3; >= 10 approaches paper scale)
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path

import pytest


def bench_seeds(default: int = 2) -> tuple[int, ...]:
    return tuple(range(int(os.environ.get("REPRO_BENCH_SEEDS", default))))


def bench_time_scale(default: float = 0.3) -> float:
    return float(os.environ.get("REPRO_BENCH_TIME_SCALE", default))


@pytest.fixture
def seeds() -> tuple[int, ...]:
    return bench_seeds()


@pytest.fixture
def time_scale() -> float:
    return bench_time_scale()


def bench_stamp() -> dict:
    """Provenance stamp for the ``BENCH_*.json`` artifacts.

    Records where a number came from, so a regression diff can distinguish
    "the code got slower" from "it was measured on a different machine /
    interpreter / commit".  The git SHA is ``None`` when the repository
    metadata is unavailable (e.g. a source tarball).
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            cwd=Path(__file__).resolve().parent,
            timeout=10,
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        sha = None
    import numpy

    return {
        "git_sha": sha,
        "generated_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
    }


def print_block(title: str, body: str) -> None:
    """Emit a result block on the *real* stdout.

    pytest captures ``sys.stdout`` unless ``-s`` is given; the regenerated
    paper tables are the point of this harness, so they are written to the
    unbuffered original stream and always reach the console / tee file.
    """
    bar = "=" * 72
    stream = sys.__stdout__ or sys.stdout
    stream.write(f"\n{bar}\n{title}\n{bar}\n{body}\n\n")
    stream.flush()
