"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints the
rows next to the paper's reference values, so ``pytest benchmarks/
--benchmark-only`` doubles as the reproduction record (see EXPERIMENTS.md).

Scale knobs (environment variables):

``REPRO_BENCH_SEEDS``      random applications per dimension (default 2;
                           paper used 15)
``REPRO_BENCH_TIME_SCALE`` multiplier on the per-size search budgets
                           (default 0.3; >= 10 approaches paper scale)
"""

from __future__ import annotations

import os
import sys

import pytest


def bench_seeds(default: int = 2) -> tuple[int, ...]:
    return tuple(range(int(os.environ.get("REPRO_BENCH_SEEDS", default))))


def bench_time_scale(default: float = 0.3) -> float:
    return float(os.environ.get("REPRO_BENCH_TIME_SCALE", default))


@pytest.fixture
def seeds() -> tuple[int, ...]:
    return bench_seeds()


@pytest.fixture
def time_scale() -> float:
    return bench_time_scale()


def print_block(title: str, body: str) -> None:
    """Emit a result block on the *real* stdout.

    pytest captures ``sys.stdout`` unless ``-s`` is given; the regenerated
    paper tables are the point of this harness, so they are written to the
    unbuffered original stream and always reach the console / tee file.
    """
    bar = "=" * 72
    stream = sys.__stdout__ or sys.stdout
    stream.write(f"\n{bar}\n{title}\n{bar}\n{body}\n\n")
    stream.flush()
