"""Benchmark: Table 1b — MXR overhead versus number of faults k (paper §6).

Paper reference (60 processes, 4 nodes, µ = 5 ms):

    k    %max    %avg    %min
    2    52.44   32.72   19.52
    4   110.22   76.81   46.67
    6   162.09  118.58   81.69
    8   250.55  174.07  117.84
    10  292.11  219.79  154.93
"""

from __future__ import annotations

from benchmarks.conftest import print_block
from repro.experiments.reporting import format_table1
from repro.experiments.table1 import table1b

PAPER_ROWS = {
    2: (52.44, 32.72, 19.52),
    4: (110.22, 76.81, 46.67),
    6: (162.09, 118.58, 81.69),
    8: (250.55, 174.07, 117.84),
    10: (292.11, 219.79, 154.93),
}


def test_table1b(benchmark, seeds, time_scale):
    rows = benchmark.pedantic(
        table1b,
        kwargs={"seeds": seeds, "time_scale": time_scale},
        rounds=1,
        iterations=1,
    )
    lines = [format_table1(rows, "Table 1b (measured): overhead vs fault count")]
    lines.append("\npaper reference:")
    for k, (mx, avg, mn) in PAPER_ROWS.items():
        lines.append(f"k = {k:<10} {mx:8.2f} {avg:8.2f} {mn:8.2f}")
    print_block("TABLE 1b", "\n".join(lines))

    # Shape: overheads increase substantially with k.
    averages = [row.avg_overhead for row in rows]
    assert averages[0] < averages[-1]
    assert all(avg > 0 for avg in averages)
