"""Benchmark: Table 1c — MXR overhead versus fault duration µ (paper §6).

Paper reference (20 processes, 2 nodes, k = 3):

    mu   %max    %avg    %min
    1    78.69   57.26   34.29
    5    95.90   70.67   48.87
    10  122.95   89.24   67.58
    15  132.79  107.26   75.82
    20  149.01  125.18   95.60

The paper notes the µ-driven increase is markedly gentler than the k-driven
one (Table 1b) — the shape assertion below pins exactly that.
"""

from __future__ import annotations

from benchmarks.conftest import print_block
from repro.experiments.reporting import format_table1
from repro.experiments.table1 import table1b, table1c

PAPER_ROWS = {
    1: (78.69, 57.26, 34.29),
    5: (95.90, 70.67, 48.87),
    10: (122.95, 89.24, 67.58),
    15: (132.79, 107.26, 75.82),
    20: (149.01, 125.18, 95.60),
}


def test_table1c(benchmark, seeds, time_scale):
    rows = benchmark.pedantic(
        table1c,
        kwargs={"seeds": seeds, "time_scale": time_scale},
        rounds=1,
        iterations=1,
    )
    lines = [format_table1(rows, "Table 1c (measured): overhead vs fault duration")]
    lines.append("\npaper reference:")
    for mu, (mx, avg, mn) in PAPER_ROWS.items():
        lines.append(f"mu = {mu:<8} {mx:8.2f} {avg:8.2f} {mn:8.2f}")
    print_block("TABLE 1c", "\n".join(lines))

    averages = [row.avg_overhead for row in rows]
    assert averages[0] < averages[-1]

    # Relative growth over the sweep is flatter than the k sweep's 6.7x
    # (paper: 57 -> 125 is ~2.2x while k gives 33 -> 220).
    growth = averages[-1] / max(averages[0], 1e-9)
    assert growth < 6.0
