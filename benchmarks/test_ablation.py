"""Ablation benches for the design choices DESIGN.md calls out.

1. **Staged neighbourhood** (MXR round 1 restricted to re-execution): the
   full mixed neighbourhood from iteration 0 used to trap the search in
   replication-heavy local optima at laptop budgets.
2. **Bus access optimization** (§5 final step): slot reordering after the
   mapping/policy search never hurts and can shorten the schedule.
3. **Slack sharing**: the shared recovery slack of the chain DP versus the
   naive per-process slack sum it replaces (analysis-level comparison).
"""

from __future__ import annotations

from benchmarks.conftest import print_block
from repro.gen.suite import generate_case
from repro.model.fault import FaultModel
from repro.model.ftgraph import Instance
from repro.opt.strategy import OptimizationConfig, optimize
from repro.schedule.analysis import WorstCaseAnalyzer


def test_ablation_staged_neighbourhood(benchmark):
    """rounds=3 staged (default) vs a single flat full-space pass."""
    case = generate_case(20, 2, 3, mu=5.0, seed=0)

    def run():
        staged_cfg = OptimizationConfig(
            minimize=True, rounds=3, tabu_max_iterations=25, greedy_max_iterations=30
        )
        flat_cfg = OptimizationConfig(
            minimize=True, rounds=1, tabu_max_iterations=75, greedy_max_iterations=30
        )
        staged = optimize(
            case.application, case.architecture, case.faults, "MXR", staged_cfg
        )
        flat = optimize(
            case.application, case.architecture, case.faults, "MXR", flat_cfg
        )
        return staged.makespan, flat.makespan

    staged_len, flat_len = benchmark.pedantic(run, rounds=1, iterations=1)
    print_block(
        "ABLATION: staged neighbourhood",
        f"staged rounds: {staged_len:.1f} ms\nflat search:   {flat_len:.1f} ms",
    )
    # The staged search must not be worse than the flat one at equal budget.
    assert staged_len <= flat_len * 1.05


def test_ablation_bus_access_optimization(benchmark):
    """Final slot-reordering step: never worse, sometimes better."""
    case = generate_case(20, 3, 3, mu=5.0, seed=5)

    def run():
        base_cfg = OptimizationConfig(
            minimize=True, rounds=2, tabu_max_iterations=10
        )
        bus_cfg = OptimizationConfig(
            minimize=True, rounds=2, tabu_max_iterations=10, optimize_bus=True
        )
        base = optimize(
            case.application, case.architecture, case.faults, "MXR", base_cfg
        )
        tuned = optimize(
            case.application, case.architecture, case.faults, "MXR", bus_cfg
        )
        return base.makespan, tuned.makespan

    base_len, tuned_len = benchmark.pedantic(run, rounds=1, iterations=1)
    print_block(
        "ABLATION: bus access optimization",
        f"without: {base_len:.1f} ms\nwith:    {tuned_len:.1f} ms",
    )
    assert tuned_len <= base_len + 1e-6


def test_ablation_checkpointing_extension(benchmark):
    """Extension: MXC (checkpointed re-execution allowed) vs MXR vs MX.

    With many faults and a modest checkpoint overhead, segment-level
    recovery shrinks the recovery slack and MXC wins; this quantifies the
    value of the paper's third (named but unevaluated) technique.
    """
    case = generate_case(16, 2, 4, mu=5.0, seed=3)
    faults = FaultModel(k=4, mu=5.0, checkpoint_overhead=0.5)

    def run():
        cfg = OptimizationConfig(
            minimize=True, rounds=3, tabu_max_iterations=15, greedy_max_iterations=20
        )
        out = {}
        for variant in ("MX", "MXR", "MXC"):
            result = optimize(
                case.application, case.architecture, faults, variant, cfg
            )
            out[variant] = result.makespan
        return out

    lengths = benchmark.pedantic(run, rounds=1, iterations=1)
    print_block(
        "ABLATION: checkpointing extension (k=4, overhead 0.5 ms)",
        "\n".join(f"{v}: {m:.1f} ms" for v, m in lengths.items()),
    )
    assert lengths["MXC"] <= lengths["MXR"] + 1e-6
    assert lengths["MXR"] <= lengths["MX"] + 1e-6


def test_ablation_slack_sharing(benchmark):
    """Shared recovery slack vs naive per-process slack accumulation."""
    faults = FaultModel(k=3, mu=5.0)
    wcets = [40.0, 60.0, 30.0, 50.0, 20.0]

    def run():
        analyzer = WorstCaseAnalyzer(faults)
        shared = 0.0
        for index, wcet in enumerate(wcets):
            instance = Instance(
                id=f"P{index}:r0", process=f"P{index}", replica=0,
                node="N1", wcet=wcet, reexecutions=faults.k,
            )
            shared = analyzer.place(instance, [0.0] * (faults.k + 1)).wcf
        naive = sum(w + faults.k * (w + faults.mu) for w in wcets)
        return shared, naive

    shared, naive = benchmark.pedantic(run, rounds=1, iterations=1)
    saving = 100.0 * (naive - shared) / naive
    print_block(
        "ABLATION: slack sharing",
        f"shared slack WCF: {shared:.1f} ms\n"
        f"naive slack sum:  {naive:.1f} ms\n"
        f"saving:           {saving:.1f}%",
    )
    assert shared < naive
