"""Benchmark: the cruise-controller experiment (paper §6, final paragraph).

Paper reference: with D = 250 ms, k = 2, µ = 2 ms, MXR produced a
schedulable implementation with a worst-case system delay of 229 ms (65%
overhead over NFT); MX (253 ms) and MR (301 ms) both missed the deadline.

Measured with this reproduction's CC model (structurally faithful rebuild,
see DESIGN.md §5) under the *sound* correlated-delay adversary model (see
DESIGN.md "Fast/guaranteed frames"): the search currently converges to
MXR = MX ≈ 252 ms — a 0.8% deadline miss that matches the paper's MX
verdict (253 ms) and reproduces the 65% overhead and the MR ≫ MX ≫ MXR
ordering.  An earlier revision reported MXR ≈ 238 ms *meeting* the
deadline, but that figure rested on an adversary model that priced
correlated upstream delays per frame; fault injection produced a concrete
counterexample to that model.  A validated mixed implementation at
249.3 ms (schedulable!) does exist under the sound analysis — the
optimizer's single-move neighbourhood just cannot reach it from the
re-execution optimum (see ROADMAP: joint replica+placement moves).
"""

from __future__ import annotations

from benchmarks.conftest import print_block
from repro.apps.cruise_control import CC_DEADLINE_MS
from repro.experiments.cruise import run_cruise_experiment
from repro.experiments.reporting import format_cruise

#: MXR must land within 1% of the deadline (252.5 ms for D = 250 ms).
CC_DEADLINE_LIMIT = CC_DEADLINE_MS * 1.01


def test_cruise_controller(benchmark):
    result = benchmark.pedantic(run_cruise_experiment, rounds=1, iterations=1)
    body = format_cruise(result)
    body += (
        "\n\npaper reference: NFT ~139, MXR 229 (meets, 65% overhead), "
        "MX 253 (missed), MR 301 (missed)"
    )
    print_block("CRUISE CONTROLLER", body)

    # MXR is never beaten by a pure strategy, and lands within 1% of the
    # deadline (the paper met it at 229 ms; our sound adversary model plus
    # the current single-move search stop 2 ms short — see module
    # docstring before touching this bound).
    assert result.makespans["MXR"] <= min(
        result.makespans[v] for v in ("MX", "MR", "SFX")
    )
    assert result.makespans["MXR"] <= CC_DEADLINE_LIMIT
    assert not result.meets_deadline("MR")
    assert not result.meets_deadline("SFX")
    # Overhead in the paper's ballpark (65%).
    assert 30.0 <= result.overhead_pct("MXR") <= 100.0
    # MR is the worst policy on the CC as in the paper.
    assert result.makespans["MR"] > result.makespans["MX"]
