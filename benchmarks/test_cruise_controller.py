"""Benchmark: the cruise-controller experiment (paper §6, final paragraph).

Paper reference: with D = 250 ms, k = 2, µ = 2 ms, MXR produced a
schedulable implementation with a worst-case system delay of 229 ms (65%
overhead over NFT); MX (253 ms) and MR (301 ms) both missed the deadline.

Measured with this reproduction's CC model (structurally faithful rebuild,
see DESIGN.md §5): MXR ≈ 238 ms meets the deadline, MX ≈ 252 ms misses,
MR and SFX miss by a wide margin — the same verdict pattern as the paper.
"""

from __future__ import annotations

from benchmarks.conftest import print_block
from repro.experiments.cruise import run_cruise_experiment
from repro.experiments.reporting import format_cruise


def test_cruise_controller(benchmark):
    result = benchmark.pedantic(run_cruise_experiment, rounds=1, iterations=1)
    body = format_cruise(result)
    body += (
        "\n\npaper reference: NFT ~139, MXR 229 (meets, 65% overhead), "
        "MX 253 (missed), MR 301 (missed)"
    )
    print_block("CRUISE CONTROLLER", body)

    assert result.meets_deadline("MXR")
    assert not result.meets_deadline("MX")
    assert not result.meets_deadline("MR")
    assert not result.meets_deadline("SFX")
    # Overhead in the paper's ballpark (65%).
    assert 30.0 <= result.overhead_pct("MXR") <= 100.0
    # MR is the worst policy on the CC as in the paper.
    assert result.makespans["MR"] > result.makespans["MX"]
