"""Micro-benchmarks of the core machinery (not a paper table).

These track the throughput the design-space exploration depends on: one
tabu-search iteration evaluates dozens of candidate implementations, each a
full list-scheduling + worst-case-analysis pass.
"""

from __future__ import annotations

import pytest

from repro.gen.suite import generate_case
from repro.model.merge import merge_application
from repro.opt.evaluator import Evaluator
from repro.opt.initial import initial_bus_access, initial_mpa
from repro.sim.engine import SystemSimulator
from repro.sim.faults import FAULT_FREE


def _setup(n, nodes, k):
    case = generate_case(n, nodes, k, mu=5.0, seed=0)
    merged = merge_application(case.application)
    bus = initial_bus_access(case.application, case.architecture)
    evaluator = Evaluator(merged, case.faults, cache=False)
    impl = initial_mpa(merged, case.architecture, case.faults, bus)
    return evaluator, impl


@pytest.mark.parametrize("n,nodes,k", [(20, 2, 3), (60, 4, 5), (100, 6, 7)])
def test_schedule_evaluation_throughput(benchmark, n, nodes, k):
    """Full schedule + (k, µ) worst-case analysis of one implementation."""
    evaluator, impl = _setup(n, nodes, k)
    benchmark(evaluator.evaluate, impl)


@pytest.mark.parametrize("n,nodes,k", [(20, 2, 3), (60, 4, 5)])
def test_fault_injection_throughput(benchmark, n, nodes, k):
    """One simulated cycle of a synthesized schedule (fault-free scenario)."""
    evaluator, impl = _setup(n, nodes, k)
    schedule = evaluator.schedule(impl)
    simulator = SystemSimulator(schedule)
    benchmark(simulator.run, FAULT_FREE)
