"""Micro-benchmarks of the core machinery (not a paper table).

These track the throughput the design-space exploration depends on: one
tabu-search iteration evaluates dozens of candidate implementations, each a
full list-scheduling + worst-case-analysis pass.

``test_pipeline_throughput_records_bench_json`` additionally writes
``BENCH_scheduler.json`` at the repository root so the performance
trajectory of the evaluation pipeline is tracked from PR to PR (see
EXPERIMENTS.md).
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

import pytest

from repro.gen.suite import generate_case
from repro.model.merge import merge_application
from repro.opt.evaluator import Evaluator
from repro.opt.initial import initial_bus_access, initial_mpa
from repro.sim.engine import SystemSimulator
from repro.sim.faults import FAULT_FREE

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_scheduler.json"


def _setup(n, nodes, k):
    case = generate_case(n, nodes, k, mu=5.0, seed=0)
    merged = merge_application(case.application)
    bus = initial_bus_access(case.application, case.architecture)
    evaluator = Evaluator(merged, case.faults, cache=False)
    impl = initial_mpa(merged, case.architecture, case.faults, bus)
    return evaluator, impl


@pytest.mark.parametrize("n,nodes,k", [(20, 2, 3), (60, 4, 5), (100, 6, 7)])
def test_schedule_evaluation_throughput(benchmark, n, nodes, k):
    """Full schedule + (k, µ) worst-case analysis of one implementation."""
    evaluator, impl = _setup(n, nodes, k)
    benchmark(evaluator.evaluate, impl)


@pytest.mark.parametrize("n,nodes,k", [(20, 2, 3), (60, 4, 5)])
def test_fault_injection_throughput(benchmark, n, nodes, k):
    """One simulated cycle of a synthesized schedule (fault-free scenario)."""
    evaluator, impl = _setup(n, nodes, k)
    schedule = evaluator.schedule(impl)
    simulator = SystemSimulator(schedule)
    benchmark(simulator.run, FAULT_FREE)


def _best_of(windows: int, run) -> float:
    """Minimum elapsed seconds of ``run()`` over ``windows`` attempts.

    Best-of measurement windows, so transient machine load does not
    masquerade as a pipeline regression in the recorded trajectory; the
    cyclic GC is suspended during the windows so collector pauses over the
    test harness's own module graph don't pollute the number.
    """
    elapsed = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(windows):
            started = time.perf_counter()
            run()
            elapsed = min(elapsed, time.perf_counter() - started)
    finally:
        if gc_was_enabled:
            gc.enable()
    return elapsed


def test_pipeline_throughput_records_bench_json():
    """Measure the 40-process evaluation pipeline and write BENCH_scheduler.json.

    Numbers tracked from PR to PR:

    * ``evaluations_per_sec`` — the headline: candidate design points
      priced per second by the *delta evaluation kernel*
      (``Evaluator.evaluate_many``, cache disabled) over the critical-path
      move neighbourhood of the 40-process case.  Each pricing is a
      cone-suffix replay against the shared base context; no schedule
      record is sealed.  This is the throughput one search iteration
      scales with.
    * ``delta.cold_neighbourhood_per_sec`` — the same neighbourhood priced
      by cold full passes; the headline divided by this is the delta
      kernel's measured speedup on identical work.
    * ``full_evaluations_per_sec`` — the pre-delta headline (repeated cold
      evaluation of the initial implementation, cache disabled), kept for
      trajectory continuity with earlier PRs.
    * ``pipeline`` — a miniature MXR strategy run (greedy + tabu, no time
      limit) measured through the caching pipeline: evaluation requests
      per second and the cache hit rate the strategy achieves.
    * ``vector`` — the same neighbourhood priced by the ranking tier
      (``Evaluator.rank_neighbourhood``): every candidate gets a
      bounded-error vector estimate, only the top-``shortlist`` are
      re-priced exactly through the delta kernel.
      ``speedup_vs_delta`` is the wall-clock ratio against the all-exact
      delta pass on identical work.
    * ``obs.overhead_pct`` — the telemetry tax: the same strategy run
      with ``--trace`` enabled against its untraced twin (best-of
      windows each).  ``scripts/check_bench_regression.py`` holds this
      under an absolute ceiling, so span writes creeping into a hot loop
      fail CI instead of silently taxing every traced sweep.
    """
    from benchmarks.conftest import bench_stamp
    from repro.opt.moves import generate_moves
    from repro.opt.strategy import OptimizationConfig, optimize

    case = generate_case(40, 3, 4, mu=5.0, seed=0)
    merged = merge_application(case.application)
    bus = initial_bus_access(case.application, case.architecture)
    impl = initial_mpa(merged, case.architecture, case.faults, bus)

    # The real neighbourhood the search prices every iteration: all
    # critical-path moves (remap / policy / replica-remap) of the initial
    # implementation.
    base_record = Evaluator(merged, case.faults).evaluate_record(impl)[1]
    moves = generate_moves(
        merged, case.faults, impl, base_record.critical_path(), (1, 2, 3)
    )
    assert moves, "empty neighbourhood — benchmark case degenerated"

    # Headline: delta-kernel pricing (capture amortized inside the window,
    # cache disabled so every window re-prices every candidate).
    delta_eval = Evaluator(merged, case.faults, cache=False)
    delta_eval.evaluate_many(impl, moves)  # warm-up (and context capture)
    delta_elapsed = _best_of(
        3, lambda: delta_eval.evaluate_many(impl, moves)
    )
    evaluations_per_sec = len(moves) / delta_elapsed

    # Ranking tier: vector-estimate everything, exact-price the top-8.
    # Cache disabled so every window re-ranks the full neighbourhood.
    shortlist = 8
    rank_eval = Evaluator(merged, case.faults, cache=False)
    rank_eval.rank_neighbourhood(impl, moves, shortlist=shortlist)  # warm-up
    rank_elapsed = _best_of(
        3, lambda: rank_eval.rank_neighbourhood(impl, moves, shortlist=shortlist)
    )
    ranked_per_sec = len(moves) / rank_elapsed

    # The same neighbourhood, cold: one full list-scheduling pass each.
    cold_eval = Evaluator(merged, case.faults, cache=False, delta=False)
    candidates = [move.apply(impl) for move in moves]
    cold_eval.evaluate(candidates[0])  # warm-up

    def _cold_window():
        for candidate in candidates:
            cold_eval.evaluate(candidate)

    cold_elapsed = _best_of(3, _cold_window)
    cold_per_sec = len(moves) / cold_elapsed

    # Pre-delta headline, unchanged definition: repeated cold evaluation
    # of the initial implementation.
    raw = Evaluator(merged, case.faults, cache=False, delta=False)
    raw.evaluate(impl)  # warm-up
    n_raw = 60

    def _raw_window():
        for _ in range(n_raw):
            raw.evaluate(impl)

    full_evaluations_per_sec = n_raw / _best_of(3, _raw_window)

    # Cached-evaluator statistics come from the public cache_info() (hits/
    # misses/size/bound a la functools.lru_cache), not private fields.
    cached = Evaluator(merged, case.faults)
    cached.evaluate(impl)
    cached.evaluate(impl)
    info = cached.cache_info()
    assert info.hits == 1 and info.misses == 1 and info.size == 1

    # Full single-pass pipeline: one scaled-down strategy run.
    config = OptimizationConfig(
        minimize=True, rounds=1, greedy_max_iterations=3,
        tabu_max_iterations=3, time_limit_s=None,
    )
    started = time.perf_counter()
    result = optimize(
        case.application, case.architecture, case.faults, "MXR", config
    )
    pipeline_elapsed = time.perf_counter() - started
    requests = result.evaluations + result.cache_hits

    # Telemetry tax: the identical strategy run traced vs untraced.
    import os
    import tempfile

    from repro import obs

    def _pipeline_window():
        optimize(
            case.application, case.architecture, case.faults, "MXR", config
        )

    untraced_s = _best_of(2, _pipeline_window)
    with tempfile.TemporaryDirectory() as tmp:
        obs.enable_tracing(os.path.join(tmp, "bench.jsonl"), label="bench")
        try:
            traced_s = _best_of(2, _pipeline_window)
        finally:
            obs.disable_tracing()
    obs_overhead_pct = 100.0 * (traced_s - untraced_s) / untraced_s

    record = {
        "case": {"n_processes": 40, "n_nodes": 3, "k": 4, "mu": 5.0, "seed": 0},
        "stamp": bench_stamp(),
        "evaluations_per_sec": round(evaluations_per_sec, 1),
        "full_evaluations_per_sec": round(full_evaluations_per_sec, 1),
        "delta": {
            "neighbourhood_moves": len(moves),
            "cold_neighbourhood_per_sec": round(cold_per_sec, 1),
            "speedup_vs_cold": round(cold_elapsed / delta_elapsed, 2),
        },
        "vector": {
            "candidates_per_sec": round(ranked_per_sec, 1),
            "shortlist": shortlist,
            "speedup_vs_delta": round(delta_elapsed / rank_elapsed, 2),
        },
        "pipeline": {
            "requests_per_sec": round(requests / pipeline_elapsed, 1),
            "cache_hit_rate": round(
                result.cache_hits / requests if requests else 0.0, 4
            ),
            "evaluations": result.evaluations,  # design pricings (cache misses)
            "elapsed_s": round(pipeline_elapsed, 3),
            "cache_bound": info.bound,  # Evaluator DEFAULT_CACHE_SIZE
        },
        "obs": {
            "overhead_pct": round(obs_overhead_pct, 2),
            "untraced_s": round(untraced_s, 3),
            "traced_s": round(traced_s, 3),
        },
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")

    assert record["evaluations_per_sec"] > 0
    assert record["delta"]["speedup_vs_cold"] > 1.0
    assert record["vector"]["speedup_vs_delta"] > 1.0
    assert 0.0 <= record["pipeline"]["cache_hit_rate"] < 1.0
    assert result.evaluations > 0
