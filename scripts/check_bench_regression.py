#!/usr/bin/env python3
"""Fail CI when the evaluation pipeline gets materially slower.

Compares a freshly measured ``BENCH_scheduler.json`` against the baseline
committed at ``HEAD`` and exits non-zero when any gated metric dropped by
more than the allowed fraction (default 30% — generous enough that
shared-runner noise never trips it, tight enough that an accidental O(n)
regression in the delta kernel or the scheduler inner loop does).

Gated metrics (dotted paths into the JSON record):

* ``evaluations_per_sec`` — the headline delta-kernel throughput;
* ``delta.speedup_vs_cold`` — the delta kernel's relative win over cold
  passes (guards against the *cold* path speeding up while the delta path
  silently rots, which the absolute headline alone would miss);
* ``vector.candidates_per_sec`` — the ranking tier's neighbourhood
  pricing throughput.

Usage (CI runs it right after the smoke benchmark regenerates the file)::

    python scripts/check_bench_regression.py [--current BENCH_scheduler.json]
        [--allowed-drop 0.30]

The baseline is read from ``git show HEAD:BENCH_scheduler.json`` so the
working-tree file can be the fresh measurement.  The gate is advisory
infrastructure, not physics: runs labelled ``perf-regression-expected``
skip the CI step entirely (see .github/workflows/ci.yml), a missing
baseline (first run, shallow clone without the file) passes with a notice,
and a metric absent from the committed baseline passes with a notice (it
was introduced by the PR under test).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

#: Dotted paths into BENCH_scheduler.json checked against the baseline.
GATED_METRICS = (
    "evaluations_per_sec",
    "delta.speedup_vs_cold",
    "vector.candidates_per_sec",
)


def lookup(record: dict, dotted: str) -> float | None:
    """Resolve a dotted path; ``None`` when any segment is missing."""
    node = record
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    try:
        return float(node)
    except (TypeError, ValueError):
        return None


def baseline_record(repo: Path) -> dict | None:
    try:
        out = subprocess.run(
            ["git", "show", "HEAD:BENCH_scheduler.json"],
            capture_output=True,
            text=True,
            cwd=repo,
            timeout=30,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    try:
        return json.loads(out.stdout)
    except json.JSONDecodeError:
        return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current",
        type=Path,
        default=Path("BENCH_scheduler.json"),
        help="freshly measured record (default: BENCH_scheduler.json)",
    )
    parser.add_argument(
        "--allowed-drop",
        type=float,
        default=0.30,
        help="maximum tolerated fractional drop of any gated metric "
        "(default: 0.30)",
    )
    args = parser.parse_args(argv)

    current = json.loads(args.current.read_text())

    baseline = baseline_record(args.current.resolve().parent)
    if baseline is None:
        print(
            "perf gate: no committed baseline BENCH_scheduler.json at HEAD "
            "— passing by default"
        )
        return 0

    sha = baseline.get("stamp", {}).get("git_sha", "?")
    failures = []
    for metric in GATED_METRICS:
        measured = lookup(current, metric)
        committed = lookup(baseline, metric)
        if measured is None:
            print(
                f"perf gate: {metric} missing from the fresh measurement — "
                "REGRESSION (the benchmark stopped recording it)"
            )
            failures.append(metric)
            continue
        if committed is None:
            print(
                f"perf gate: {metric} not in the committed baseline — "
                "passing (introduced by this PR)"
            )
            continue
        if committed <= 0:
            print(
                f"perf gate: committed {metric} is non-positive — skipping"
            )
            continue
        floor = committed * (1.0 - args.allowed_drop)
        verdict = "OK" if measured >= floor else "REGRESSION"
        print(
            f"perf gate [{verdict}]: {metric} measured {measured:.2f} "
            f"vs committed {committed:.2f} "
            f"(floor {floor:.2f} = -{args.allowed_drop:.0%}; "
            f"baseline sha {sha})"
        )
        if measured < floor:
            failures.append(metric)

    if failures:
        print(
            "The evaluation pipeline is more than "
            f"{args.allowed_drop:.0%} slower than the committed baseline "
            f"on: {', '.join(failures)}.\n"
            "If the slowdown is intended (heavier analysis, measurement "
            "environment change), either regenerate the committed "
            "BENCH_scheduler.json on the PR or apply the "
            "'perf-regression-expected' label to skip this gate."
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
