#!/usr/bin/env python3
"""Fail CI when the evaluation or injection pipeline gets materially slower.

Compares freshly measured ``BENCH_*.json`` records against the baselines
committed at ``HEAD`` and exits non-zero when any gated metric dropped by
more than the allowed fraction (default 30% — generous enough that
shared-runner noise never trips it, tight enough that an accidental O(n)
regression in the delta kernel, the scheduler inner loop, or the
scenario simulator does).

Gated metrics (per file, dotted paths into the JSON record):

``BENCH_scheduler.json``
    * ``evaluations_per_sec`` — the headline delta-kernel throughput;
    * ``delta.speedup_vs_cold`` — the delta kernel's relative win over
      cold passes (guards against the *cold* path speeding up while the
      delta path silently rots, which the absolute headline alone would
      miss);
    * ``vector.candidates_per_sec`` — the ranking tier's neighbourhood
      pricing throughput.

``BENCH_inject.json``
    * ``inject.scenarios_per_sec`` — fault-scenario simulation
      throughput of the sharded injection sweep (inline batched tier);
    * ``inject.batch.scenarios_per_sec`` — the same measurement under
      its explicit batch-tier name (guards against the sweep silently
      falling back to the scalar path).

On top of the drop-vs-baseline gates, a few metrics carry *absolute
ceilings* — smaller is better and the bound does not move with the
committed baseline:

``BENCH_scheduler.json``
    * ``obs.overhead_pct`` ≤ 15 — wall-clock cost of running the
      scaled-down strategy benchmark with ``--trace`` enabled, in
      percent over its untraced twin.  Guards against span writes or
      metric bookkeeping creeping into a per-evaluation hot loop (the
      intended instrumentation granularity is per phase/pass).

Usage (CI runs it right after the smoke benchmarks regenerate the
files)::

    python scripts/check_bench_regression.py [--root .]
        [--allowed-drop 0.30]

Baselines are read from ``git show HEAD:<file>`` so the working-tree
files can be the fresh measurements.  The gate is advisory
infrastructure, not physics: runs labelled ``perf-regression-expected``
skip the CI step entirely (see .github/workflows/ci.yml), a missing
baseline (first run, shallow clone without the file) passes with a
notice, and a metric or file absent from the committed baseline passes
with a notice (it was introduced by the PR under test).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

#: Per benchmark record, the dotted paths checked against the baseline.
GATED = (
    (
        "BENCH_scheduler.json",
        (
            "evaluations_per_sec",
            "delta.speedup_vs_cold",
            "vector.candidates_per_sec",
        ),
    ),
    (
        "BENCH_inject.json",
        (
            "inject.scenarios_per_sec",
            "inject.batch.scenarios_per_sec",
        ),
    ),
)

#: Per benchmark record, (dotted path, inclusive ceiling) pairs gated
#: absolutely: the fresh measurement must not exceed the ceiling,
#: regardless of what the committed baseline says.
CEILINGS = (
    ("BENCH_scheduler.json", (("obs.overhead_pct", 15.0),)),
)


def lookup(record: dict, dotted: str) -> float | None:
    """Resolve a dotted path; ``None`` when any segment is missing."""
    node = record
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    try:
        return float(node)
    except (TypeError, ValueError):
        return None


def baseline_record(repo: Path, filename: str) -> dict | None:
    try:
        out = subprocess.run(
            ["git", "show", f"HEAD:{filename}"],
            capture_output=True,
            text=True,
            cwd=repo,
            timeout=30,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    try:
        return json.loads(out.stdout)
    except json.JSONDecodeError:
        return None


def check_file(
    root: Path, filename: str, metrics: tuple[str, ...], allowed_drop: float
) -> list[str]:
    """Gate one record; returns the metrics that regressed."""
    baseline = baseline_record(root, filename)
    current_path = root / filename
    if not current_path.exists():
        if baseline is None:
            print(f"perf gate: no fresh or committed {filename} — skipping")
            return []
        print(
            f"perf gate: {filename} committed at HEAD but not freshly "
            "measured — REGRESSION (the benchmark stopped running)"
        )
        return [f"{filename} missing"]
    current = json.loads(current_path.read_text())
    if baseline is None:
        print(
            f"perf gate: no committed baseline {filename} at HEAD — "
            "passing by default"
        )
        return []

    sha = baseline.get("stamp", {}).get("git_sha", "?")
    failures = []
    for metric in metrics:
        measured = lookup(current, metric)
        committed = lookup(baseline, metric)
        if measured is None:
            print(
                f"perf gate: {metric} missing from the fresh {filename} — "
                "REGRESSION (the benchmark stopped recording it)"
            )
            failures.append(metric)
            continue
        if committed is None:
            print(
                f"perf gate: {metric} not in the committed baseline — "
                "passing (introduced by this PR)"
            )
            continue
        if committed <= 0:
            print(
                f"perf gate: committed {metric} is non-positive — skipping"
            )
            continue
        floor = committed * (1.0 - allowed_drop)
        verdict = "OK" if measured >= floor else "REGRESSION"
        print(
            f"perf gate [{verdict}]: {metric} measured {measured:.2f} "
            f"vs committed {committed:.2f} "
            f"(floor {floor:.2f} = -{allowed_drop:.0%}; "
            f"baseline sha {sha})"
        )
        if measured < floor:
            failures.append(metric)
    return failures


def check_ceilings(
    root: Path, filename: str, bounds: tuple[tuple[str, float], ...]
) -> list[str]:
    """Gate absolute ceilings of one record; returns breached metrics."""
    current_path = root / filename
    if not current_path.exists():
        # The relative gate already decides whether a missing file is a
        # regression; ceilings only judge fresh measurements.
        return []
    current = json.loads(current_path.read_text())
    baseline = baseline_record(root, filename)
    failures = []
    for metric, ceiling in bounds:
        measured = lookup(current, metric)
        if measured is None:
            if baseline is not None and lookup(baseline, metric) is not None:
                print(
                    f"perf gate: {metric} missing from the fresh {filename} "
                    "— REGRESSION (the benchmark stopped recording it)"
                )
                failures.append(metric)
            else:
                print(
                    f"perf gate: {metric} not measured and not in the "
                    "committed baseline — skipping its ceiling"
                )
            continue
        verdict = "OK" if measured <= ceiling else "REGRESSION"
        print(
            f"perf gate [{verdict}]: {metric} measured {measured:.2f} "
            f"vs absolute ceiling {ceiling:.2f}"
        )
        if measured > ceiling:
            failures.append(metric)
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path("."),
        help="directory holding the fresh BENCH_*.json records "
        "(default: current directory; must be inside the repository)",
    )
    parser.add_argument(
        "--allowed-drop",
        type=float,
        default=0.30,
        help="maximum tolerated fractional drop of any gated metric "
        "(default: 0.30)",
    )
    args = parser.parse_args(argv)

    root = args.root.resolve()
    failures: list[str] = []
    for filename, metrics in GATED:
        failures.extend(check_file(root, filename, metrics, args.allowed_drop))
    for filename, bounds in CEILINGS:
        failures.extend(check_ceilings(root, filename, bounds))

    if failures:
        print(
            "The pipeline regressed against the committed baseline "
            f"(more than {args.allowed_drop:.0%} slower, or over an "
            f"absolute ceiling) on: {', '.join(failures)}.\n"
            "If the slowdown is intended (heavier analysis, measurement "
            "environment change), either regenerate the committed "
            "BENCH_*.json on the PR or apply the "
            "'perf-regression-expected' label to skip this gate."
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
