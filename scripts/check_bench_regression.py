#!/usr/bin/env python3
"""Fail CI when the evaluation pipeline gets materially slower.

Compares a freshly measured ``BENCH_scheduler.json`` against the baseline
committed at ``HEAD`` and exits non-zero when the headline
``evaluations_per_sec`` dropped by more than the allowed fraction
(default 30% — generous enough that shared-runner noise never trips it,
tight enough that an accidental O(n) regression in the delta kernel or
the scheduler inner loop does).

Usage (CI runs it right after the smoke benchmark regenerates the file)::

    python scripts/check_bench_regression.py [--current BENCH_scheduler.json]
        [--allowed-drop 0.30]

The baseline is read from ``git show HEAD:BENCH_scheduler.json`` so the
working-tree file can be the fresh measurement.  The gate is advisory
infrastructure, not physics: runs labelled ``perf-regression-expected``
skip the CI step entirely (see .github/workflows/ci.yml), and a missing
baseline (first run, shallow clone without the file) passes with a notice.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

HEADLINE = "evaluations_per_sec"


def baseline_record(repo: Path) -> dict | None:
    try:
        out = subprocess.run(
            ["git", "show", "HEAD:BENCH_scheduler.json"],
            capture_output=True,
            text=True,
            cwd=repo,
            timeout=30,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    try:
        return json.loads(out.stdout)
    except json.JSONDecodeError:
        return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current",
        type=Path,
        default=Path("BENCH_scheduler.json"),
        help="freshly measured record (default: BENCH_scheduler.json)",
    )
    parser.add_argument(
        "--allowed-drop",
        type=float,
        default=0.30,
        help="maximum tolerated fractional drop of the headline "
        "evaluations_per_sec (default: 0.30)",
    )
    args = parser.parse_args(argv)

    current = json.loads(args.current.read_text())
    measured = float(current[HEADLINE])

    baseline = baseline_record(args.current.resolve().parent)
    if baseline is None or HEADLINE not in baseline:
        print(
            "perf gate: no committed baseline BENCH_scheduler.json at HEAD "
            "— passing by default"
        )
        return 0
    committed = float(baseline[HEADLINE])
    if committed <= 0:
        print("perf gate: committed baseline is non-positive — skipping")
        return 0

    floor = committed * (1.0 - args.allowed_drop)
    verdict = "OK" if measured >= floor else "REGRESSION"
    print(
        f"perf gate [{verdict}]: {HEADLINE} measured {measured:.1f} "
        f"vs committed {committed:.1f} "
        f"(floor {floor:.1f} = -{args.allowed_drop:.0%}; "
        f"baseline sha {baseline.get('stamp', {}).get('git_sha', '?')})"
    )
    if measured < floor:
        print(
            "The evaluation pipeline is more than "
            f"{args.allowed_drop:.0%} slower than the committed baseline.\n"
            "If the slowdown is intended (heavier analysis, measurement "
            "environment change), either regenerate the committed "
            "BENCH_scheduler.json on the PR or apply the "
            "'perf-regression-expected' label to skip this gate."
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
